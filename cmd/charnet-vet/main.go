// Command charnet-vet runs the repository's determinism-and-correctness
// lint suite (internal/analysis) over the module and reports findings as
//
//	file:line: analyzer: message
//
// It exits nonzero when any finding survives. Intentional violations are
// suppressed in source with a justified directive on the offending line or
// the line above:
//
//	//charnet:ignore <analyzer> <reason>
//
// Usage:
//
//	charnet-vet [-list] [packages ...]
//
// Packages are go list patterns (default ./...) resolved from the module
// root; a plain directory path is analyzed directly, which is how the
// fixture tests drive the tool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// outf writes best-effort console output.
func outf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...) //charnet:ignore errdiscard console output is best-effort
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charnet-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	verbose := fs.Bool("v", false, "print type-check warnings to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			outf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, listPatterns, err := resolveTargets(moduleDir, patterns)
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}

	runner := analysis.NewRunner(moduleDir)
	if len(listPatterns) > 0 {
		runner.Prewarm(listPatterns...)
	}
	findings, err := runner.Run(targets)
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}
	if *verbose {
		for _, w := range runner.TypeErrors {
			outf(stderr, "charnet-vet: warning: %s\n", w)
		}
	}
	cwd, _ := os.Getwd() //charnet:ignore errdiscard relative display paths are cosmetic
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		outf(stdout, "%s\n", f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolveTargets turns CLI arguments into analysis targets. Existing
// directories are taken as-is with a pseudo import path; everything else
// goes through `go list`. The go list patterns are also returned so the
// importer can prewarm its export-data cache in one subprocess.
func resolveTargets(moduleDir string, patterns []string) ([]analysis.Target, []string, error) {
	var targets []analysis.Target
	var listArgs []string
	for _, p := range patterns {
		if info, err := os.Stat(p); err == nil && info.IsDir() {
			abs, err := filepath.Abs(p)
			if err != nil {
				return nil, nil, err
			}
			targets = append(targets, analysis.Target{Dir: abs, Path: pseudoPath(moduleDir, abs)})
			continue
		}
		listArgs = append(listArgs, p)
	}
	if len(listArgs) > 0 {
		cmd := exec.Command("go", append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}", "--"}, listArgs...)...)
		cmd.Dir = moduleDir
		out, err := cmd.Output()
		if err != nil {
			return nil, nil, fmt.Errorf("go list %s: %v", strings.Join(listArgs, " "), err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			dir, path, ok := strings.Cut(line, "\t")
			if ok && dir != "" {
				targets = append(targets, analysis.Target{Dir: dir, Path: path})
			}
		}
	}
	return targets, listArgs, nil
}

// pseudoPath derives an import path for a bare directory: the part after
// testdata/src/ when present (fixture convention), else the module-relative
// path under the module name.
func pseudoPath(moduleDir, dir string) string {
	slashed := filepath.ToSlash(dir)
	if _, after, ok := strings.Cut(slashed, "/testdata/src/"); ok {
		return after
	}
	if rel, err := filepath.Rel(moduleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
		return "repro/" + filepath.ToSlash(rel)
	}
	return filepath.Base(dir)
}
