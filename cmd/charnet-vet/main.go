// Command charnet-vet runs the repository's determinism-and-correctness
// lint suite (internal/analysis) over the module and reports findings as
//
//	file:line: analyzer: message
//
// It exits nonzero when any finding survives. Intentional violations are
// suppressed in source with a justified directive on the offending line or
// the line above:
//
//	//charnet:ignore <analyzer> <reason>
//
// Usage:
//
//	charnet-vet [-list] [-json] [-unused-ignores] [-workers N] [packages ...]
//
// Packages are go list patterns (default ./...) resolved from the module
// root; a plain directory path is analyzed directly, which is how the
// fixture tests drive the tool. -json emits the findings as a single JSON
// document (the archival format scripts/check.sh stores next to the trace
// artifacts); -unused-ignores additionally reports //charnet:ignore
// directives that no longer suppress anything, so stale suppressions fail
// the gate instead of rotting into false documentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// outf writes best-effort console output.
func outf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...) //charnet:ignore errdiscard console output is best-effort
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charnet-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	verbose := fs.Bool("v", false, "print type-check warnings to stderr")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document")
	unused := fs.Bool("unused-ignores", false, "also report //charnet:ignore directives that no longer suppress anything")
	workers := fs.Int("workers", 0, "worker-pool size for parsing and per-package analysis (0 = auto)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			outf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, listPatterns, err := analysis.ModuleTargets(moduleDir, patterns)
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}

	runner := analysis.NewRunner(moduleDir)
	runner.Workers = *workers
	if len(listPatterns) > 0 {
		runner.Prewarm(listPatterns...)
	}
	findings, err := runner.Run(targets)
	if err != nil {
		outf(stderr, "charnet-vet: %v\n", err)
		return 2
	}
	if *unused {
		findings = append(findings, unusedFindings(runner.Unused)...)
	}
	if *verbose {
		for _, w := range runner.TypeErrors {
			outf(stderr, "charnet-vet: warning: %s\n", w)
		}
	}
	cwd, _ := os.Getwd() //charnet:ignore errdiscard relative display paths are cosmetic
	for i := range findings {
		findings[i].Pos.Filename = displayPath(cwd, findings[i].Pos.Filename)
	}
	if *jsonOut {
		writeJSON(stdout, findings)
	} else {
		for _, f := range findings {
			outf(stdout, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// unusedFindings converts stale directives into "ignore" findings; they
// arrive sorted by file and line from the Runner.
func unusedFindings(dirs []analysis.Directive) []analysis.Finding {
	var out []analysis.Finding
	for _, d := range dirs {
		out = append(out, analysis.Finding{
			Pos:      token.Position{Filename: d.File, Line: d.Line},
			Analyzer: "ignore",
			Message:  fmt.Sprintf("unused suppression: //charnet:ignore %s (%s) no longer matches any finding; delete it", d.Analyzer, d.Reason),
		})
	}
	return out
}

// writeJSON renders the findings as one deterministic JSON document:
//
//	{"analyzers": [...], "findings": [{"file","line","analyzer","message"}, ...]}
//
// so scripts/check.sh can archive machine-readable lint results next to
// the trace and bench artifacts.
func writeJSON(w io.Writer, findings []analysis.Finding) {
	type jsonFinding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	doc := struct {
		Analyzers []string      `json:"analyzers"`
		Findings  []jsonFinding `json:"findings"`
	}{Findings: []jsonFinding{}}
	for _, a := range analysis.All() {
		doc.Analyzers = append(doc.Analyzers, a.Name)
	}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc) //charnet:ignore errdiscard console output is best-effort
}

// displayPath relativizes an absolute finding path against the working
// directory when that makes it shorter and still inside the tree.
func displayPath(cwd, file string) string {
	if cwd == "" {
		return file
	}
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
