// Command charnet reproduces the tables and figures of "Performance
// Characterization of .NET Benchmarks" (ISPASS 2021) from the simulated
// substrate and prints them as text.
//
// Usage:
//
//	charnet [-full] [-cache DIR] [-workers N] [-trace-out FILE]
//	        [-events-out FILE] [-profile-json FILE] [-progress]
//	        [-pprof ADDR] <command>
//
// Observability flags (all output goes to stderr or files; experiment
// stdout is byte-identical with or without them):
//
//	-workers N         bound the measurement worker pool (0 = GOMAXPROCS)
//	-trace-out FILE    write a Chrome trace-event JSON file (load it at
//	                   https://ui.perfetto.dev or chrome://tracing)
//	-events-out FILE   write the span/counter/gauge event log as JSONL
//	-profile-json FILE write top-level phase wall-times as JSON
//	                   (consumed by scripts/bench.sh)
//	-progress          live driver/suite progress lines on stderr
//	-pprof ADDR        serve net/http/pprof and expvar on ADDR
//
// Any of these (except -workers) also prints the end-of-run text
// self-profile tree on stderr.
//
// Commands:
//
//	metrics    print the Table I metric catalog
//	machines   print the Table II machine models
//	suites     print suite sizes and the Table IV subsets
//	run NAME   run one workload on the i9 and print its metrics
//	table3     Table III  (PCA loading factors)
//	table4     Table IV   (representative subsets, derived)
//	fig1       Fig 1      (dendrogram of .NET categories)
//	fig2       Fig 2      (subset validation)
//	fig3       Fig 3      (kernel instruction share)
//	fig4       Fig 4      (instruction mix)
//	fig5       Fig 5      (.NET vs SPEC PCA scatter)
//	fig6       Fig 6      (ASP.NET vs SPEC PCA scatter)
//	fig7       Fig 7      (x86-64 vs AArch64)
//	fig8       Fig 8      (counter geomeans)
//	fig9       Fig 9      (basic Top-Down)
//	fig10      Fig 10     (frontend/backend breakdown)
//	fig11      Figs 11+12 (core-count scaling)
//	fig13      Fig 13     (JIT/GC correlation study)
//	fig14      Fig 14     (workstation vs server GC sweep)
//	extensions what-if study of the paper's §VIII hardware proposals
//	claims     execute the machine-checkable reproduction-claim catalog
//	sensitivity check headline orderings across simulator configurations
//	crossisa   extension: does an x86-derived subset transfer to Arm?
//	export S F measure suite S (dotnet|aspnet|spec) and emit F (csv|json)
//	trace NAME run NAME with 1ms-style sampling and emit the sample CSV
//	all        everything above, in order
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"

	"repro/charnet"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mstore"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/textplot"
)

func main() {
	full := flag.Bool("full", false, "full-fidelity runs (all workloads, more instructions)")
	cacheDir := flag.String("cache", "", "persistent measurement store directory (reuses identical measurements across runs)")
	workers := flag.Int("workers", 0, "measurement worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	eventsOut := flag.String("events-out", "", "write the observability event log as JSONL")
	profileJSON := flag.String("profile-json", "", "write top-level phase wall-times as JSON")
	progress := flag.Bool("progress", false, "live per-driver/per-suite progress on stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Workers = *workers
	lab := experiments.NewLab(cfg)

	// The trace exists only when some observability output was requested:
	// an untraced run keeps the nil no-op path everywhere.
	var tr *obs.Trace
	if *traceOut != "" || *eventsOut != "" || *profileJSON != "" || *progress || *pprofAddr != "" {
		var opts []obs.Option
		if *progress {
			opts = append(opts, obs.WithProgress(os.Stderr))
		}
		tr = obs.New(opts...)
		lab.Obs = tr
	}
	if *pprofAddr != "" {
		expvar.Publish("charnet", expvar.Func(func() any { return tr.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "charnet: pprof server: %v\n", err)
			}
		}()
	}

	if *cacheDir != "" {
		store, err := mstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charnet: %v\n", err)
			os.Exit(1)
		}
		store.Obs = tr
		lab.Store = store
	}

	cmd := flag.Arg(0)
	derr := dispatch(lab, cmd, flag.Args()[1:])
	if err := writeObsOutputs(tr, *traceOut, *eventsOut, *profileJSON); err != nil {
		fmt.Fprintf(os.Stderr, "charnet: %v\n", err)
		if derr == nil {
			os.Exit(1)
		}
	}
	if derr != nil {
		fmt.Fprintf(os.Stderr, "charnet: %v\n", derr)
		os.Exit(1)
	}
}

// writeObsOutputs lands the requested trace artifacts and prints the text
// self-profile on stderr. Observability output never touches stdout.
func writeObsOutputs(tr *obs.Trace, traceOut, eventsOut, profileJSON string) error {
	if tr == nil {
		return nil
	}
	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			//charnet:ignore errdiscard the write error already reports this path's failure
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		if err := writeFile(traceOut, tr.WriteChromeTrace); err != nil {
			return err
		}
	}
	if eventsOut != "" {
		if err := writeFile(eventsOut, tr.WriteJSONL); err != nil {
			return err
		}
	}
	if profileJSON != "" {
		if err := writeFile(profileJSON, tr.WritePhasesJSON); err != nil {
			return err
		}
	}
	return tr.WriteSelfProfile(os.Stderr)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: charnet [-full] [-cache DIR] [-workers N] [-trace-out FILE] [-events-out FILE] [-profile-json FILE] [-progress] [-pprof ADDR] <metrics|machines|suites|run NAME|table3|table4|fig1..fig14|all>")
}

type figure func(*experiments.Lab) (fmt.Stringer, error)

// figures maps command names to drivers, in paper order.
var figures = []struct {
	name string
	run  figure
}{
	{"table3", wrap(experiments.TableIII)},
	{"table4", wrap(experiments.TableIV)},
	{"fig1", wrap(experiments.Figure1)},
	{"fig2", wrap(experiments.Figure2)},
	{"fig3", wrap(experiments.Figure3)},
	{"fig4", wrap(experiments.Figure4)},
	{"fig5", wrap(experiments.Figure5)},
	{"fig6", wrap(experiments.Figure6)},
	{"fig7", wrap(experiments.Figure7)},
	{"fig8", wrap(experiments.Figure8)},
	{"fig9", wrap(experiments.Figure9)},
	{"fig10", wrap(experiments.Figure10)},
	{"fig11", wrap(experiments.Figure11)},
	{"fig12", wrap(experiments.Figure11)}, // Fig 12 shares the Fig 11 sweep
	{"fig13", wrap(experiments.Figure13)},
	{"fig14", wrap(experiments.Figure14)},
	{"extensions", wrap(experiments.Extensions)},
	{"claims", wrap(experiments.RunClaims)},
	{"sensitivity", wrap(experiments.Sensitivity)},
	{"crossisa", wrap(experiments.CrossISA)},
}

// wrap adapts a typed driver to the generic figure signature.
func wrap[T fmt.Stringer](f func(*experiments.Lab) (T, error)) figure {
	return func(l *experiments.Lab) (fmt.Stringer, error) {
		return f(l)
	}
}

func dispatch(lab *experiments.Lab, cmd string, args []string) error {
	switch cmd {
	case "metrics":
		return inDriverSpan(lab, cmd, printMetrics)
	case "machines":
		return inDriverSpan(lab, cmd, printMachines)
	case "suites":
		return inDriverSpan(lab, cmd, printSuites)
	case "run":
		if len(args) < 1 {
			return fmt.Errorf("run requires a workload name")
		}
		return inDriverSpan(lab, cmd, func() error { return runOne(lab, args[0]) })
	case "trace":
		if len(args) < 1 {
			return fmt.Errorf("trace requires a workload name")
		}
		return inDriverSpan(lab, cmd, func() error { return traceOne(lab, args[0]) })
	case "export":
		if len(args) < 1 {
			return fmt.Errorf("export requires a suite: dotnet|aspnet|spec")
		}
		format := "csv"
		if len(args) > 1 {
			format = args[1]
		}
		return inDriverSpan(lab, cmd, func() error { return exportSuite(lab, args[0], format) })
	case "all":
		for _, f := range figures {
			if f.name == "fig12" {
				continue // included in fig11 output
			}
			if err := printFigure(lab, f.name, f.run); err != nil {
				return fmt.Errorf("%s: %w", f.name, err)
			}
		}
		return nil
	}
	for _, f := range figures {
		if f.name == cmd {
			return printFigure(lab, f.name, f.run)
		}
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// inDriverSpan runs one command under a top-level "driver" span, the root
// of the trace's span taxonomy.
func inDriverSpan(lab *experiments.Lab, name string, f func() error) error {
	span := lab.Obs.Span("driver", name)
	defer span.End()
	return f()
}

func printFigure(lab *experiments.Lab, name string, f figure) error {
	span := lab.Obs.Span("driver", name)
	res, err := f(lab)
	span.End()
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	return nil
}

func printMetrics() error {
	var rows [][]string
	for _, id := range metrics.All() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", int(id)), id.Category(), id.Name(), id.Unit(),
		})
	}
	fmt.Print(textplot.Table("Table I: characterization metrics",
		[]string{"ID", "category", "metric", "unit"}, rows))
	return nil
}

func printMachines() error {
	var rows [][]string
	for _, m := range machine.All() {
		rows = append(rows, []string{
			m.Name, m.ISA.String(),
			fmt.Sprintf("%d/%d", m.Cores, m.VCPUs),
			fmt.Sprintf("%.1f/%.1f GHz", m.NomFreq, m.MaxFreq),
			fmt.Sprintf("%dKiB/%dKiB/%dKiB/%dMiB",
				m.L1D.SizeBytes/1024, m.L1I.SizeBytes/1024, m.L2.SizeBytes/1024, m.L3.SizeBytes/(1<<20)),
			m.OS,
		})
	}
	fmt.Print(textplot.Table("Table II: hardware configurations",
		[]string{"machine", "ISA", "CPU/vCPU", "freq", "L1d/L1i/L2/L3", "OS"}, rows))
	return nil
}

func printSuites() error {
	fmt.Printf("suites:\n")
	fmt.Printf("  .NET:    %d categories, %d individual microbenchmarks\n",
		len(charnet.DotNetCategories()), len(charnet.DotNetWorkloads()))
	fmt.Printf("  ASP.NET: %d benchmarks\n", len(charnet.AspNetWorkloads()))
	fmt.Printf("  SPEC:    %d benchmarks\n", len(charnet.SpecWorkloads()))
	fmt.Printf("paper Table IV subsets:\n")
	fmt.Printf("  .NET:    %v\n", experiments.TableIVDotNetSubset)
	fmt.Printf("  ASP.NET: %v\n", experiments.TableIVAspNetSubset)
	fmt.Printf("  SPEC:    %v\n", experiments.TableIVSpecSubset)
	return nil
}

// traceOne runs a workload with periodic sampling and emits the sample
// time series as CSV (the §VII-A correlation study's raw data).
func traceOne(lab *experiments.Lab, name string) error {
	var p charnet.Profile
	var ok bool
	for _, suite := range [][]charnet.Profile{
		charnet.DotNetCategories(), charnet.AspNetWorkloads(), charnet.SpecWorkloads(),
	} {
		if p, ok = charnet.WorkloadByName(suite, name); ok {
			break
		}
	}
	if !ok {
		return fmt.Errorf("workload %q not found in any suite", name)
	}
	res, err := charnet.Run(p, charnet.CoreI9(), charnet.Options{
		Instructions:   lab.Cfg.Instructions * 4,
		SampleInterval: lab.Cfg.SampleInterval,
		AllocScale:     3000,
	})
	if err != nil {
		return err
	}
	return report.WriteSamplesCSV(os.Stdout, report.FromSamples(res.Samples))
}

// exportSuite measures a whole suite and streams records to stdout.
func exportSuite(lab *experiments.Lab, suiteName, format string) error {
	var ps []charnet.Profile
	switch suiteName {
	case "dotnet":
		ps = charnet.DotNetCategories()
	case "aspnet":
		ps = charnet.AspNetWorkloads()
	case "spec":
		ps = charnet.SpecWorkloads()
	default:
		return fmt.Errorf("unknown suite %q (want dotnet|aspnet|spec)", suiteName)
	}
	ms := charnet.MeasureSuite(ps, charnet.CoreI9(), charnet.Options{Instructions: lab.Cfg.Instructions})
	recs := report.FromMeasurements(ms)
	switch format {
	case "csv":
		return report.WriteCSV(os.Stdout, recs)
	case "json":
		return report.WriteJSON(os.Stdout, recs)
	default:
		return fmt.Errorf("unknown format %q (want csv|json)", format)
	}
}

func runOne(lab *experiments.Lab, name string) error {
	var p charnet.Profile
	var ok bool
	for _, suite := range [][]charnet.Profile{
		charnet.DotNetCategories(), charnet.AspNetWorkloads(), charnet.SpecWorkloads(),
	} {
		if p, ok = charnet.WorkloadByName(suite, name); ok {
			break
		}
	}
	if !ok {
		return fmt.Errorf("workload %q not found in any suite", name)
	}
	res, err := charnet.Run(p, charnet.CoreI9(), charnet.Options{Instructions: lab.Cfg.Instructions * 4})
	if err != nil {
		return err
	}
	vec, err := charnet.Metrics(res)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%d cores)\n", p.Name, res.Machine.Name, res.Cores)
	var rows [][]string
	for _, id := range metrics.All() {
		rows = append(rows, []string{id.Name(), fmt.Sprintf("%.4g", vec[id]), id.Unit()})
	}
	fmt.Print(textplot.Table("Table I metrics", []string{"metric", "value", "unit"}, rows))
	fmt.Printf("Top-Down: %s\n", res.Profile)
	return nil
}
