// Command charnet reproduces the tables and figures of "Performance
// Characterization of .NET Benchmarks" (ISPASS 2021) from the simulated
// substrate and renders them as text, JSON or CSV.
//
// Usage:
//
//	charnet [-full] [-cache DIR] [-workers N] [-format text|json|csv]
//	        [-suite-spec FILE]... [-trace-out FILE] [-events-out FILE]
//	        [-profile-json FILE] [-telemetry-out FILE] [-progress]
//	        [-telemetry-addr ADDR] [-pprof ADDR] <command>
//
// Suites are data: -suite-spec FILE (repeatable) loads a declarative
// workload-spec JSON file (see docs/WORKLOADS.md) and registers its suite
// beside the built-in paper suites. External suites flow through the
// characterization drivers (table3, table4, fig1, fig2) and the utility
// commands (suites, run, trace, export) with no further flags; the
// built-in suites' output stays byte-identical.
//
// Output format:
//
//	-format text       the paper's figures as monospace plots (default)
//	-format json       typed artifacts: one JSON array of {name, title,
//	                   paper, payloads:[{kind, data}]} objects
//	-format csv        one tidy long-format table covering every payload
//
// Every experiment command (and `all`) honors -format; the structured
// formats also include hidden machine-readable twins of prose-only data.
// Utility commands (metrics, machines, suites, run, trace, export) are
// text-only.
//
// Observability flags (all output goes to stderr or files; experiment
// stdout is byte-identical with or without them):
//
//	-workers N           bound the measurement worker pool (0 = GOMAXPROCS)
//	-trace-out FILE      write a Chrome trace-event JSON file (load it at
//	                     https://ui.perfetto.dev or chrome://tracing)
//	-events-out FILE     write the span/counter/gauge/histogram event log
//	                     as JSONL
//	-profile-json FILE   write top-level phase wall-times as JSON
//	                     (consumed by scripts/bench.sh)
//	-telemetry-out FILE  write the telemetry run-report artifact as JSON
//	-progress            live driver/suite progress lines on stderr
//	-telemetry-addr ADDR serve the live telemetry plane on ADDR: /metrics
//	                     (Prometheus text format), /healthz, /infoz,
//	                     /debug/vars and /debug/pprof/*. The bound address
//	                     is announced on stderr, so ":0" works.
//	-pprof ADDR          deprecated alias for -telemetry-addr
//
// Any of these (except -workers) also prints the end-of-run text
// self-profile tree on stderr.
//
// The experiment command list (table3, fig1, ... claims) is generated
// from the driver registry in internal/experiments; run charnet with no
// arguments to see it. Interrupting a run (SIGINT/SIGTERM) cancels the
// in-flight measurement promptly and exits non-zero.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/charnet"
	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mstore"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// multiFlag collects every occurrence of a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	full := flag.Bool("full", false, "full-fidelity runs (all workloads, more instructions)")
	cacheDir := flag.String("cache", "", "persistent measurement store directory (reuses identical measurements across runs)")
	workers := flag.Int("workers", 0, "measurement worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	format := flag.String("format", "text", "experiment output format: text, json or csv")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	eventsOut := flag.String("events-out", "", "write the observability event log as JSONL")
	profileJSON := flag.String("profile-json", "", "write top-level phase wall-times as JSON")
	progress := flag.Bool("progress", false, "live per-driver/per-suite progress on stderr")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, expvar and pprof on this address (\":0\" picks a port, announced on stderr)")
	telemetryOut := flag.String("telemetry-out", "", "write the telemetry run-report artifact as JSON")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -telemetry-addr")
	var suiteSpecs multiFlag
	flag.Var(&suiteSpecs, "suite-spec", "register an external suite from a workload-spec JSON file (repeatable)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "charnet: unknown format %q (want text|json|csv)\n", *format)
		os.Exit(2)
	}
	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Workers = *workers
	lab := experiments.NewLab(cfg)
	if len(suiteSpecs) > 0 {
		reg := workload.NewRegistry()
		for _, path := range suiteSpecs {
			if _, err := reg.RegisterSpecFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "charnet: %v\n", err)
				os.Exit(1)
			}
		}
		lab.Registry = reg
	}

	serveAddr := *telemetryAddr
	if serveAddr == "" {
		serveAddr = *pprofAddr
	}

	// The trace exists only when some observability output was requested:
	// an untraced run keeps the nil no-op path everywhere.
	var tr *obs.Trace
	if *traceOut != "" || *eventsOut != "" || *profileJSON != "" || *telemetryOut != "" || *progress || serveAddr != "" {
		var opts []obs.Option
		if *progress {
			opts = append(opts, obs.WithProgress(os.Stderr))
		}
		tr = obs.New(opts...)
		lab.Obs = tr
	}

	stopTelemetry := func() {}
	if serveAddr != "" {
		fidelity := "quick"
		if *full {
			fidelity = "full"
		}
		info := telemetry.Info{Role: "cli", Command: flag.Arg(0), Fidelity: fidelity, Format: *format, Workers: *workers}
		stop, err := serveTelemetry(serveAddr, tr, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charnet: telemetry: %v\n", err)
			os.Exit(1)
		}
		stopTelemetry = stop
	}

	if *cacheDir != "" {
		store, err := mstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charnet: %v\n", err)
			os.Exit(1)
		}
		store.Obs = tr
		lab.Store = store
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd := flag.Arg(0)
	derr := dispatch(ctx, lab, cmd, flag.Args()[1:], *format, os.Stdout)
	stopTelemetry()
	if err := writeObsOutputs(ctx, lab, tr, *traceOut, *eventsOut, *profileJSON, *telemetryOut); err != nil {
		fmt.Fprintf(os.Stderr, "charnet: %v\n", err)
		if derr == nil {
			os.Exit(1)
		}
	}
	if derr != nil {
		fmt.Fprintf(os.Stderr, "charnet: %v\n", derr)
		os.Exit(1)
	}
}

// serveTelemetry binds the telemetry service plane (internal/telemetry's
// mux) on addr and starts serving. Listening happens synchronously so a
// ":0" address resolves to a real port before the run starts, announced
// on stderr for scrapers to pick up. The returned stop function
// gracefully shuts the server down and joins the serve goroutine.
func serveTelemetry(addr string, tr *obs.Trace, info telemetry.Info) (stop func(), err error) {
	expvar.Publish("charnet", expvar.Func(func() any { return tr.Snapshot() }))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "charnet: telemetry: serving on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: telemetry.NewMux(tr, info)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "charnet: telemetry: shutdown: %v\n", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "charnet: telemetry: %v\n", err)
		}
	}, nil
}

// writeObsOutputs lands the requested trace artifacts and prints the text
// self-profile on stderr. Observability output never touches stdout.
func writeObsOutputs(ctx context.Context, lab *experiments.Lab, tr *obs.Trace, traceOut, eventsOut, profileJSON, telemetryOut string) error {
	if tr == nil {
		return nil
	}
	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			//charnet:ignore errdiscard the write error already reports this path's failure
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		if err := writeFile(traceOut, tr.WriteChromeTrace); err != nil {
			return err
		}
	}
	if eventsOut != "" {
		if err := writeFile(eventsOut, tr.WriteJSONL); err != nil {
			return err
		}
	}
	if profileJSON != "" {
		if err := writeFile(profileJSON, tr.WritePhasesJSON); err != nil {
			return err
		}
	}
	if telemetryOut != "" {
		res, err := experiments.Telemetry(ctx, lab)
		if err != nil {
			return err
		}
		if err := writeFile(telemetryOut, func(w io.Writer) error {
			return artifact.WriteJSON(w, []*artifact.Artifact{res.Artifact()})
		}); err != nil {
			return err
		}
	}
	return tr.WriteSelfProfile(os.Stderr)
}

// usage is generated from the driver registry: a driver registered in
// internal/experiments appears here without any cmd/charnet change.
func usage() {
	fmt.Fprintln(os.Stderr, "usage: charnet [-full] [-cache DIR] [-workers N] [-format text|json|csv] [-suite-spec FILE]... [-trace-out FILE] [-events-out FILE] [-profile-json FILE] [-telemetry-out FILE] [-progress] [-telemetry-addr ADDR] <command>")
	fmt.Fprintln(os.Stderr, "\n-suite-spec FILE (repeatable) registers an external suite from a")
	fmt.Fprintln(os.Stderr, "workload-spec JSON file (docs/WORKLOADS.md); it then flows through the")
	fmt.Fprintln(os.Stderr, "characterization experiments and the utility commands below.")
	fmt.Fprintln(os.Stderr, "\nutility commands (text-only):")
	fmt.Fprintln(os.Stderr, "  metrics     print the Table I metric catalog")
	fmt.Fprintln(os.Stderr, "  machines    print the Table II machine models")
	fmt.Fprintln(os.Stderr, "  suites      print the registered suites and the Table IV subsets")
	fmt.Fprintln(os.Stderr, "  run NAME    run one workload on the i9 and print its metrics")
	fmt.Fprintln(os.Stderr, "  trace NAME  run NAME with sampling and emit the sample CSV")
	fmt.Fprintln(os.Stderr, "  export S F  measure suite S (a wire name from `suites`) and emit F (csv|json)")
	fmt.Fprintln(os.Stderr, "\nexperiment commands (honor -format):")
	for _, d := range experiments.Drivers() {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", d.Name, d.Title)
	}
	fmt.Fprintln(os.Stderr, "  all         every experiment above, in order")
}

// dispatch routes one command. Experiment commands resolve through the
// driver registry; `all` runs the registry in order. In text format the
// drivers' renderings stream to out as they finish; in json/csv the
// artifacts are collected and written once at the end.
func dispatch(ctx context.Context, lab *experiments.Lab, cmd string, args []string, format string, out io.Writer) error {
	switch cmd {
	case "metrics":
		return inDriverSpan(lab, cmd, func() error { return printMetrics(out) })
	case "machines":
		return inDriverSpan(lab, cmd, func() error { return printMachines(out) })
	case "suites":
		return inDriverSpan(lab, cmd, func() error { return printSuites(lab, out) })
	case "run":
		if len(args) < 1 {
			return fmt.Errorf("run requires a workload name")
		}
		return inDriverSpan(lab, cmd, func() error { return runOne(lab, args[0], out) })
	case "trace":
		if len(args) < 1 {
			return fmt.Errorf("trace requires a workload name")
		}
		return inDriverSpan(lab, cmd, func() error { return traceOne(lab, args[0], out) })
	case "export":
		if len(args) < 1 {
			return fmt.Errorf("export requires a suite: dotnet|aspnet|spec")
		}
		f := "csv"
		if len(args) > 1 {
			f = args[1]
		}
		return inDriverSpan(lab, cmd, func() error { return exportSuite(lab, args[0], f, out) })
	case "all":
		var arts []*artifact.Artifact
		for _, d := range experiments.Drivers() {
			if format == "text" && d.SkipInTextAll {
				continue
			}
			a, err := runDriver(ctx, lab, d)
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			if format == "text" {
				if _, err := fmt.Fprintln(out, artifact.Text(a)); err != nil {
					return err
				}
			} else {
				arts = append(arts, a)
			}
		}
		return writeArtifacts(out, format, arts)
	}
	d, ok := experiments.DriverByName(cmd)
	if !ok {
		return fmt.Errorf("unknown command %q", cmd)
	}
	a, err := runDriver(ctx, lab, d)
	if err != nil {
		return err
	}
	if format == "text" {
		_, err := fmt.Fprintln(out, artifact.Text(a))
		return err
	}
	return writeArtifacts(out, format, []*artifact.Artifact{a})
}

// runDriver executes one registered driver under its trace span.
func runDriver(ctx context.Context, lab *experiments.Lab, d experiments.Driver) (*artifact.Artifact, error) {
	span := lab.Obs.Span("driver", d.Name)
	res, err := d.Run(ctx, lab)
	span.End()
	if err != nil {
		return nil, err
	}
	return res.Artifact(), nil
}

// writeArtifacts lands collected artifacts in the structured formats.
// Text mode streams per driver instead and passes nil here.
func writeArtifacts(out io.Writer, format string, arts []*artifact.Artifact) error {
	switch format {
	case "text":
		return nil
	case "json":
		return artifact.WriteJSON(out, arts)
	case "csv":
		return artifact.WriteCSV(out, arts)
	}
	return fmt.Errorf("unknown format %q", format)
}

// inDriverSpan runs one command under a top-level "driver" span, the root
// of the trace's span taxonomy.
func inDriverSpan(lab *experiments.Lab, name string, f func() error) error {
	span := lab.Obs.Span("driver", name)
	defer span.End()
	return f()
}

func printMetrics(out io.Writer) error {
	var rows [][]string
	for _, id := range metrics.All() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", int(id)), id.Category(), id.Name(), id.Unit(),
		})
	}
	_, err := io.WriteString(out, textplot.Table("Table I: characterization metrics",
		[]string{"ID", "category", "metric", "unit"}, rows))
	return err
}

func printMachines(out io.Writer) error {
	var rows [][]string
	for _, m := range machine.All() {
		rows = append(rows, []string{
			m.Name, m.ISA.String(),
			fmt.Sprintf("%d/%d", m.Cores, m.VCPUs),
			fmt.Sprintf("%.1f/%.1f GHz", m.NomFreq, m.MaxFreq),
			fmt.Sprintf("%dKiB/%dKiB/%dKiB/%dMiB",
				m.L1D.SizeBytes/1024, m.L1I.SizeBytes/1024, m.L2.SizeBytes/1024, m.L3.SizeBytes/(1<<20)),
			m.OS,
		})
	}
	_, err := io.WriteString(out, textplot.Table("Table II: hardware configurations",
		[]string{"machine", "ISA", "CPU/vCPU", "freq", "L1d/L1i/L2/L3", "OS"}, rows))
	return err
}

func printSuites(lab *experiments.Lab, out io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "suites:\n")
	for _, def := range lab.Suites() {
		tag := ""
		if !def.Builtin {
			tag = " (external)"
		}
		if def.Measurement.Sampled {
			tag += " (sampled pool)"
		}
		fmt.Fprintf(&b, "  %-18s %-14s %4d workloads%s\n", def.Wire, def.Suite.String(), def.Len(), tag)
	}
	fmt.Fprintf(&b, "paper Table IV subsets:\n")
	fmt.Fprintf(&b, "  .NET:    %v\n", experiments.TableIVDotNetSubset)
	fmt.Fprintf(&b, "  ASP.NET: %v\n", experiments.TableIVAspNetSubset)
	fmt.Fprintf(&b, "  SPEC:    %v\n", experiments.TableIVSpecSubset)
	_, err := io.WriteString(out, b.String())
	return err
}

// findWorkload resolves a workload name across every suite the Lab's
// registry knows, in registration order (built-ins first, then any
// -suite-spec externals).
func findWorkload(lab *experiments.Lab, name string) (charnet.Profile, bool) {
	for _, def := range lab.Suites() {
		if p, ok := def.Lookup(name); ok {
			return p, true
		}
	}
	return charnet.Profile{}, false
}

// traceOne runs a workload with periodic sampling and emits the sample
// time series as CSV (the §VII-A correlation study's raw data).
func traceOne(lab *experiments.Lab, name string, out io.Writer) error {
	p, ok := findWorkload(lab, name)
	if !ok {
		return fmt.Errorf("workload %q not found in any suite", name)
	}
	res, err := charnet.Run(p, charnet.CoreI9(), charnet.Options{
		Instructions:   lab.Cfg.Instructions * 4,
		SampleInterval: lab.Cfg.SampleInterval,
		AllocScale:     3000,
	})
	if err != nil {
		return err
	}
	return report.WriteSamplesCSV(out, report.FromSamples(res.Samples))
}

// exportSuite measures a whole suite and streams records to out.
func exportSuite(lab *experiments.Lab, suiteName, format string, out io.Writer) error {
	def, ok := lab.Suite(suiteName)
	if !ok {
		return fmt.Errorf("unknown suite %q (want one of %v)", suiteName, lab.SuiteNames())
	}
	ms := charnet.MeasureSuite(def.Profiles(), charnet.CoreI9(), charnet.Options{Instructions: lab.Cfg.Instructions})
	recs := report.FromMeasurements(ms)
	switch format {
	case "csv":
		return report.WriteCSV(out, recs)
	case "json":
		return report.WriteJSON(out, recs)
	default:
		return fmt.Errorf("unknown format %q (want csv|json)", format)
	}
}

func runOne(lab *experiments.Lab, name string, out io.Writer) error {
	p, ok := findWorkload(lab, name)
	if !ok {
		return fmt.Errorf("workload %q not found in any suite", name)
	}
	res, err := charnet.Run(p, charnet.CoreI9(), charnet.Options{Instructions: lab.Cfg.Instructions * 4})
	if err != nil {
		return err
	}
	vec, err := charnet.Metrics(res)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%d cores)\n", p.Name, res.Machine.Name, res.Cores)
	var rows [][]string
	for _, id := range metrics.All() {
		rows = append(rows, []string{id.Name(), fmt.Sprintf("%.4g", vec[id]), id.Unit()})
	}
	b.WriteString(textplot.Table("Table I metrics", []string{"metric", "value", "unit"}, rows))
	fmt.Fprintf(&b, "Top-Down: %s\n", res.Profile)
	_, err = io.WriteString(out, b.String())
	return err
}
