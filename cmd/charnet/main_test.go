package main

import (
	"testing"

	"repro/internal/experiments"
)

// tinyLab is the smallest configuration the drivers accept.
func tinyLab() *experiments.Lab {
	cfg := experiments.Quick()
	cfg.Instructions = 3000
	cfg.DotNetIndividualLimit = 60
	cfg.CoreSweep = []int{1, 4}
	return experiments.NewLab(cfg)
}

func TestDispatchInfoCommands(t *testing.T) {
	lab := tinyLab()
	for _, cmd := range []string{"metrics", "machines", "suites"} {
		if err := dispatch(lab, cmd, nil); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchRun(t *testing.T) {
	lab := tinyLab()
	if err := dispatch(lab, "run", []string{"System.MathBenchmarks"}); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(lab, "run", nil); err == nil {
		t.Fatal("run without a name should fail")
	}
	if err := dispatch(lab, "run", []string{"NoSuchWorkload"}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch(tinyLab(), "fig99", nil); err == nil {
		t.Fatal("unknown command should fail")
	}
}

func TestDispatchOneFigure(t *testing.T) {
	// table3 exercises the measure→PCA path end to end through the CLI.
	if err := dispatch(tinyLab(), "table3", nil); err != nil {
		t.Fatal(err)
	}
}

func TestExportArgs(t *testing.T) {
	lab := tinyLab()
	if err := dispatch(lab, "export", nil); err == nil {
		t.Fatal("export without suite should fail")
	}
	if err := dispatch(lab, "export", []string{"nope"}); err == nil {
		t.Fatal("unknown suite should fail")
	}
	if err := dispatch(lab, "export", []string{"spec", "nope"}); err == nil {
		t.Fatal("unknown format should fail")
	}
	if err := dispatch(lab, "export", []string{"spec", "json"}); err != nil {
		t.Fatal(err)
	}
}
