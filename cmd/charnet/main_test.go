package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// tinyLab is the smallest configuration the drivers accept.
func tinyLab() *experiments.Lab {
	cfg := experiments.Quick()
	cfg.Instructions = 3000
	cfg.DotNetIndividualLimit = 60
	cfg.CoreSweep = []int{1, 4}
	return experiments.NewLab(cfg)
}

func run(lab *experiments.Lab, cmd string, args []string) error {
	return dispatch(context.Background(), lab, cmd, args, "text", io.Discard)
}

func TestDispatchInfoCommands(t *testing.T) {
	lab := tinyLab()
	for _, cmd := range []string{"metrics", "machines", "suites"} {
		if err := run(lab, cmd, nil); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchRun(t *testing.T) {
	lab := tinyLab()
	if err := run(lab, "run", []string{"System.MathBenchmarks"}); err != nil {
		t.Fatal(err)
	}
	if err := run(lab, "run", nil); err == nil {
		t.Fatal("run without a name should fail")
	}
	if err := run(lab, "run", []string{"NoSuchWorkload"}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := run(tinyLab(), "fig99", nil); err == nil {
		t.Fatal("unknown command should fail")
	}
}

func TestDispatchOneFigure(t *testing.T) {
	// table3 exercises the measure→PCA path end to end through the CLI.
	if err := run(tinyLab(), "table3", nil); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchFormats renders one driver in every format and checks the
// structured outputs parse.
func TestDispatchFormats(t *testing.T) {
	lab := tinyLab()

	var text bytes.Buffer
	if err := dispatch(context.Background(), lab, "fig3", nil, "text", &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Fig 3") {
		t.Errorf("text output missing figure header:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := dispatch(context.Background(), lab, "fig3", nil, "json", &js); err != nil {
		t.Fatal(err)
	}
	var arts []struct {
		Name     string           `json:"name"`
		Payloads []map[string]any `json:"payloads"`
	}
	if err := json.Unmarshal(js.Bytes(), &arts); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v", err)
	}
	if len(arts) != 1 || arts[0].Name != "fig3" || len(arts[0].Payloads) == 0 {
		t.Errorf("unexpected JSON artifact shape: %+v", arts)
	}

	var csv bytes.Buffer
	if err := dispatch(context.Background(), lab, "fig3", nil, "csv", &csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "artifact,payload,kind,row,column,unit,value") {
		t.Errorf("unexpected CSV output:\n%s", csv.String())
	}
}

// TestDispatchCancelled verifies an already-cancelled context aborts a
// driver command with the context error.
func TestDispatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := dispatch(ctx, tinyLab(), "fig3", nil, "text", io.Discard)
	if err == nil {
		t.Fatal("cancelled dispatch should fail")
	}
}

func TestExportArgs(t *testing.T) {
	lab := tinyLab()
	if err := run(lab, "export", nil); err == nil {
		t.Fatal("export without suite should fail")
	}
	if err := run(lab, "export", []string{"nope"}); err == nil {
		t.Fatal("unknown suite should fail")
	}
	if err := run(lab, "export", []string{"spec", "nope"}); err == nil {
		t.Fatal("unknown format should fail")
	}
	if err := run(lab, "export", []string{"spec", "json"}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOutSchema drives a real figure with tracing on and validates
// the -trace-out artifact: valid JSON, only known phases, complete ("X")
// events with timestamps and non-negative durations, and the span
// taxonomy's driver/measure/sim layers all present.
func TestTraceOutSchema(t *testing.T) {
	lab := tinyLab()
	tr := obs.New()
	lab.Obs = tr
	if err := run(lab, "table3", nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	phasesPath := filepath.Join(dir, "phases.json")
	var selfProfile strings.Builder
	// writeObsOutputs prints the self-profile to stderr in production; the
	// file artifacts are what the schema check needs.
	if err := func() error {
		for path, write := range map[string]func(io.Writer) error{
			tracePath:  tr.WriteChromeTrace,
			eventsPath: tr.WriteJSONL,
			phasesPath: tr.WritePhasesJSON,
		} {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := write(f); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return tr.WriteSelfProfile(&selfProfile)
	}(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("-trace-out artifact is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without ts: %v", ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("X event without non-negative dur: %v", ev)
			}
			if args, ok := ev["args"].(map[string]any); ok {
				if span, _ := args["span"].(string); span != "" {
					seen[span] = true
				}
			}
		case "B", "E", "C", "M", "i", "I":
		default:
			t.Fatalf("unknown phase %q: %v", ph, ev)
		}
	}
	for _, span := range []string{"driver", "measure", "sim", "prewarm", "run", "derive"} {
		if !seen[span] {
			t.Errorf("trace missing %q spans (got %v)", span, seen)
		}
	}
	if !strings.Contains(selfProfile.String(), "driver table3") {
		t.Errorf("self-profile missing the driver row:\n%s", selfProfile.String())
	}

	var phases struct {
		Phases map[string]float64 `json:"phases"`
	}
	pb, err := os.ReadFile(phasesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pb, &phases); err != nil {
		t.Fatal(err)
	}
	if phases.Phases["table3"] <= 0 {
		t.Errorf("phases.json missing a positive table3 wall time: %v", phases.Phases)
	}
}
