package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func daemonLab(tr *obs.Trace) *experiments.Lab {
	lab := experiments.NewLab(experiments.Config{Instructions: 2000})
	lab.Obs = tr
	return lab
}

func daemonConfig() serve.Config {
	return serve.Config{Workers: 2, QueueDepth: 8,
		Info: telemetry.Info{Role: "daemon", Command: "serve", Fidelity: "quick", Format: "json"}}
}

// TestRunDaemonServesAndDrains boots the daemon on an ephemeral port,
// hits the API and the folded telemetry plane, then cancels the serve
// context and checks the graceful exit.
func TestRunDaemonServesAndDrains(t *testing.T) {
	tr := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- runDaemon(ctx, daemonLab(tr), tr, daemonConfig(), "127.0.0.1:0", nil, io.Discard)
	}()

	// The serve.workers gauge is published when the serve core comes up.
	waitFor(t, func() bool { return gaugeValue(tr, "serve.workers") == 2 }, "daemon to start")

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runDaemon returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}

// TestRunDaemonSelftest runs the full self-test loop: serve, load
// generation against the daemon's own endpoint, summary line and phases
// file, then exit without an external signal.
func TestRunDaemonSelftest(t *testing.T) {
	tr := obs.New()
	phases := filepath.Join(t.TempDir(), "loadgen.json")
	var out strings.Builder
	err := runDaemon(context.Background(), daemonLab(tr), tr, daemonConfig(), "127.0.0.1:0",
		&selftestOpts{requests: 8, concurrency: 2, jsonPath: phases}, &out)
	if err != nil {
		t.Fatalf("selftest run: %v", err)
	}
	if !strings.Contains(out.String(), "selftest: 8 requests, 0 errors") {
		t.Fatalf("selftest summary = %q", out.String())
	}
	raw, err := os.ReadFile(phases)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Phases map[string]float64 `json:"phases"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("phases file not JSON: %v\n%s", err, raw)
	}
	for _, k := range []string{"serve.loadgen.p50", "serve.loadgen.p99", "serve.loadgen.ns_per_req"} {
		if doc.Phases[k] <= 0 {
			t.Fatalf("phase %s = %v, want > 0 in %s", k, doc.Phases[k], raw)
		}
	}
	// The loadgen's latencies landed on the daemon trace alongside the
	// serving metrics, so the selftest is visible on /metrics too.
	if tr.Counter("serve.requests.measure") < 8 {
		t.Fatalf("serve.requests.measure = %d, want >= 8", tr.Counter("serve.requests.measure"))
	}
}

// TestSelftestConfig pins the nil-vs-options flag mapping.
func TestSelftestConfig(t *testing.T) {
	if selftestConfig(false, 1, 1, "x") != nil {
		t.Fatal("disabled selftest should map to nil")
	}
	st := selftestConfig(true, 5, 2, "p.json")
	if st == nil || st.requests != 5 || st.concurrency != 2 || st.jsonPath != "p.json" {
		t.Fatalf("selftest opts = %+v", st)
	}
}

// TestRunDaemonBindFailure: an unusable address fails fast instead of
// leaking the serve core.
func TestRunDaemonBindFailure(t *testing.T) {
	tr := obs.New()
	err := runDaemon(context.Background(), daemonLab(tr), tr, daemonConfig(), "256.256.256.256:1", nil, io.Discard)
	if err == nil {
		t.Fatal("bad address should fail")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func gaugeValue(tr *obs.Trace, name string) float64 {
	for _, g := range tr.Metrics().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}
