// Command charnetd is the measurement-serving daemon: the charnet
// pipeline behind a long-lived HTTP/JSON API (internal/serve), with the
// telemetry plane folded onto the same listener.
//
// Usage:
//
//	charnetd [-addr ADDR] [-full] [-cache DIR] [-workers N]
//	         [-suite-spec FILE]... [-serve-workers N] [-queue N]
//	         [-rate R] [-burst N] [-selftest] [-selftest-requests N]
//	         [-selftest-concurrency N] [-selftest-json FILE]
//
// -suite-spec FILE (repeatable) loads a declarative workload-spec JSON
// file (docs/WORKLOADS.md) at daemon start; the suite then appears on
// GET /v1/suites and measures through POST /v1/measure like the
// built-in paper suites.
//
// Endpoints:
//
//	GET  /v1/drivers         list the experiment drivers
//	GET  /v1/drivers/{name}  run one driver; the body is byte-identical
//	                         to `charnet -format json name`
//	GET  /v1/suites          list the registered suites
//	POST /v1/measure         measure a suite: {"suite","machine","workloads"}
//	/metrics /healthz /infoz /debug/vars /debug/pprof/*
//
// Append ?stream=jsonl to a driver or measure request for a JSONL
// progress stream. The bound address is announced on stderr, so
// `-addr :0` works for scripts. SIGINT/SIGTERM drains gracefully:
// the listener stops accepting, admitted work completes, then the
// process exits 0.
//
// -selftest runs the closed-loop load generator against the daemon's own
// /v1/measure endpoint, prints the latency/throughput summary and exits;
// -selftest-json additionally writes the summary in scripts/bench.sh's
// phases format so serving latency lands in the bench record.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/mstore"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// multiFlag collects every occurrence of a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "listen address (\":0\" picks a port, announced on stderr)")
	full := flag.Bool("full", false, "full-fidelity measurements (all workloads, more instructions)")
	cacheDir := flag.String("cache", "", "persistent measurement store directory (shared with charnet -cache)")
	workers := flag.Int("workers", 0, "simulation worker pool size per measurement (0 = GOMAXPROCS)")
	serveWorkers := flag.Int("serve-workers", 2, "concurrent request executions")
	queueDepth := flag.Int("queue", 64, "admission queue bound; a full queue sheds with 503")
	rate := flag.Float64("rate", 0, "admission rate limit in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "rate-limit burst (default: rate rounded up)")
	selftest := flag.Bool("selftest", false, "serve, run the closed-loop load generator against it, print the summary and exit")
	selftestRequests := flag.Int("selftest-requests", 32, "selftest total request count")
	selftestConcurrency := flag.Int("selftest-concurrency", 4, "selftest closed-loop client count")
	selftestJSON := flag.String("selftest-json", "", "write the selftest summary as a benchdiff phases file")
	var suiteSpecs multiFlag
	flag.Var(&suiteSpecs, "suite-spec", "register an external suite from a workload-spec JSON file (repeatable)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "charnetd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Workers = *workers
	lab := experiments.NewLab(cfg)
	if len(suiteSpecs) > 0 {
		reg := workload.NewRegistry()
		for _, path := range suiteSpecs {
			def, err := reg.RegisterSpecFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "charnetd: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "charnetd: registered suite %q (%d workloads) from %s\n", def.Wire, def.Len(), path)
		}
		lab.Registry = reg
	}
	// A daemon is observable by construction: the trace always exists and
	// backs /metrics, the serve.* instrumentation and the serving clock.
	tr := obs.New()
	lab.Obs = tr
	if *cacheDir != "" {
		store, err := mstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charnetd: %v\n", err)
			os.Exit(1)
		}
		store.Obs = tr
		lab.Store = store
	}

	fidelity := "quick"
	if *full {
		fidelity = "full"
	}
	scfg := serve.Config{
		Workers:    *serveWorkers,
		QueueDepth: *queueDepth,
		RatePerSec: *rate,
		Burst:      *burst,
		Info:       telemetry.Info{Role: "daemon", Command: "serve", Fidelity: fidelity, Format: "json", Workers: *workers},
	}

	expvar.Publish("charnetd", expvar.Func(func() any { return tr.Snapshot() }))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runDaemon(ctx, lab, tr, scfg, *addr, selftestConfig(*selftest, *selftestRequests, *selftestConcurrency, *selftestJSON), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "charnetd: %v\n", err)
		os.Exit(1)
	}
}

// selftestOpts carries the -selftest* flags; a nil value means serve
// until signalled.
type selftestOpts struct {
	requests    int
	concurrency int
	jsonPath    string
}

func selftestConfig(enabled bool, requests, concurrency int, jsonPath string) *selftestOpts {
	if !enabled {
		return nil
	}
	return &selftestOpts{requests: requests, concurrency: concurrency, jsonPath: jsonPath}
}

// runDaemon binds addr, serves until ctx is cancelled (or the selftest
// completes), then drains: listener shutdown first so handlers return,
// serve core second so admitted work lands.
func runDaemon(ctx context.Context, lab *experiments.Lab, tr *obs.Trace, scfg serve.Config, addr string, st *selftestOpts, out io.Writer) error {
	s := serve.New(lab, tr, scfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "charnetd: serving on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var selftestErr error
	if st != nil {
		selftestErr = runSelftest(ctx, tr, ln.Addr().String(), st, out)
	} else {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "charnetd: signal received, draining")
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "charnetd: shutdown: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "charnetd: %v\n", err)
	}
	s.Close()
	fmt.Fprintln(os.Stderr, "charnetd: drained")
	return selftestErr
}

// runSelftest drives the closed-loop load generator against the daemon's
// own measure endpoint and publishes the summary: a human-readable line
// on out, and optionally the benchdiff phases document.
func runSelftest(ctx context.Context, tr *obs.Trace, addr string, st *selftestOpts, out io.Writer) error {
	res, err := serve.RunLoadGen(ctx, tr, serve.LoadGenConfig{
		URL:         "http://" + addr + "/v1/measure",
		Body:        `{"suite":"aspnet"}`,
		Requests:    st.requests,
		Concurrency: st.concurrency,
	})
	if err != nil {
		return fmt.Errorf("selftest: %w", err)
	}
	if res.Errors > 0 {
		return fmt.Errorf("selftest: %d of %d requests failed", res.Errors, res.Requests)
	}
	if _, err := fmt.Fprintf(out, "charnetd: selftest: %d requests, %d errors, p50=%v p99=%v, %.1f req/s\n",
		res.Requests, res.Errors, res.P50, res.P99, res.Throughput); err != nil {
		return err
	}
	if st.jsonPath != "" {
		f, err := os.Create(st.jsonPath)
		if err != nil {
			return err
		}
		if err := res.WritePhases(f); err != nil {
			//charnet:ignore errdiscard the phases write error already reports this path's failure
			f.Close()
			return fmt.Errorf("%s: %w", st.jsonPath, err)
		}
		return f.Close()
	}
	return nil
}
