// Command benchdiff records and compares benchmark runs: the mechanism
// that turns "the pipeline is fast" into an enforced property.
//
// Usage:
//
//	go test -run=NONE -bench=. ./... | benchdiff record -rev REV [-phases FILE[,FILE...]] -out BENCH_REV.json
//	benchdiff compare [-tol 0.10] [-phase-tol 0.35] OLD.json NEW.json
//
// record parses standard `go test -bench` output from stdin and writes a
// JSON record mapping benchmark names to ns/op (the minimum across -count
// repetitions, the conventional low-noise statistic). With -phases it also
// merges one or more phase files (comma-separated) into the record as
// "phase:<name>" entries: `charnet -profile-json` wall-times and
// `charnetd -selftest-json` serving latencies share the format, so a
// regression localizes to a pipeline phase (table3, fig11, ...) or a
// serving percentile (serve.loadgen.p99) rather than just "the pipeline".
//
// compare exits nonzero if any benchmark present in both records is
// slower in NEW by more than the tolerance (default 10%; "phase:" entries
// are single whole-pipeline runs and get the looser -phase-tol, default
// 35%). scripts/bench.sh drives both halves.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark run: ns/op per benchmark name.
type Record struct {
	Rev        string             `json:"rev"`
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchdiff record -rev REV [-phases FILE] -out FILE < bench-output
       benchdiff compare [-tol FRAC] [-phase-tol FRAC] OLD.json NEW.json`)
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	rev := fs.String("rev", "unknown", "revision label for the record")
	note := fs.String("note", "", "free-form annotation")
	out := fs.String("out", "", "output file (default stdout)")
	phases := fs.String("phases", "", "comma-separated phase files ({\"phases\":{name:ns}}) to merge as phase:<name> entries")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec := Record{Rev: *rev, Note: *note, Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through so the run stays visible
		name, ns, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		// Minimum across -count repetitions: the least-interference run.
		if old, seen := rec.Benchmarks[name]; !seen || ns < old {
			rec.Benchmarks[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	if err := mergePhaseList(&rec, *phases); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(*out, b, 0o644)
}

// phasePrefix marks whole-pipeline phase wall-times inside a record; they
// come from one run each, so compare applies the looser -phase-tol.
const phasePrefix = "phase:"

// mergePhaseList folds every file in a comma-separated -phases spec;
// empty elements (and an empty spec) are skipped.
func mergePhaseList(rec *Record, spec string) error {
	for _, path := range strings.Split(spec, ",") {
		if path == "" {
			continue
		}
		if err := mergePhases(rec, path); err != nil {
			return err
		}
	}
	return nil
}

// mergePhases folds one phases file ({"phases": {name: nanoseconds}} —
// `charnet -profile-json` or `charnetd -selftest-json`) into the record
// under phase-prefixed names.
func mergePhases(rec *Record, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Phases map[string]float64 `json:"phases"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Phases) == 0 {
		return fmt.Errorf("%s: no phases recorded", path)
	}
	for name, ns := range doc.Phases {
		rec.Benchmarks[phasePrefix+name] = ns
	}
	return nil
}

// parseBenchLine extracts (name, ns/op) from a `go test -bench` result
// line, e.g. "BenchmarkCacheAccessMiss-8   190024   6.2 ns/op  ...".
// The -GOMAXPROCS suffix is stripped so records from different machines
// stay comparable.
func parseBenchLine(line string) (string, float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(f); i++ {
		if f[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return "", 0, false
			}
			name := f[0]
			if j := strings.LastIndexByte(name, '-'); j > 0 {
				if _, err := strconv.Atoi(name[j+1:]); err == nil {
					name = name[:j]
				}
			}
			return name, ns, true
		}
	}
	return "", 0, false
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.10, "allowed slowdown fraction before failing")
	phaseTol := fs.Float64("phase-tol", 0.35, "allowed slowdown fraction for phase:<name> entries (single runs, noisier)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		usage()
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("comparing %s (%s) -> %s (%s), tolerance %.0f%% (%.0f%% for phases)\n",
		fs.Arg(0), old.Rev, fs.Arg(1), cur.Rev, *tol*100, *phaseTol*100)
	var regressed int
	for _, name := range names {
		newNS := cur.Benchmarks[name]
		oldNS, ok := old.Benchmarks[name]
		if !ok {
			fmt.Printf("  new      %-40s %14.0f ns/op\n", name, newNS)
			continue
		}
		t := *tol
		if strings.HasPrefix(name, phasePrefix) {
			t = *phaseTol
		}
		ratio := newNS / oldNS
		mark := "  ok      "
		switch {
		case ratio > 1+t:
			mark = "  REGRESS "
			regressed++
		case ratio < 1-t:
			mark = "  faster  "
		}
		fmt.Printf("%s%-40s %14.0f -> %14.0f ns/op (%.2fx)\n", mark, name, oldNS, newNS, ratio)
	}
	oldNames := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			oldNames = append(oldNames, name)
		}
	}
	sort.Strings(oldNames)
	for _, name := range oldNames {
		fmt.Printf("  dropped %-40s %14.0f ns/op\n", name, old.Benchmarks[name])
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance", regressed)
	}
	fmt.Println("no regressions beyond tolerance")
	return nil
}

func load(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
