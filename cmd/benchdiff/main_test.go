package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkCacheAccessMRUHit-8   	197019026	         6.094 ns/op", "BenchmarkCacheAccessMRUHit", 6.094, true},
		{"BenchmarkTableIV          	       2	2168872337 ns/op	1206849128 B/op	   44042 allocs/op", "BenchmarkTableIV", 2168872337, true},
		{"BenchmarkAblationLinkage/average-16        100     1200 ns/op", "BenchmarkAblationLinkage/average", 1200, true},
		{"ok  	repro/internal/mem	0.006s", "", 0, false},
		{"PASS", "", 0, false},
		{"goos: linux", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestMergePhases(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "phases.json")
	if err := os.WriteFile(path, []byte(`{"phases":{"table3":103318454,"fig11":88000000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := Record{Benchmarks: map[string]float64{"BenchmarkTableIV": 100}}
	if err := mergePhases(&rec, path); err != nil {
		t.Fatal(err)
	}
	if got := rec.Benchmarks["phase:table3"]; got != 103318454 {
		t.Errorf("phase:table3 = %v, want 103318454", got)
	}
	if got := rec.Benchmarks["phase:fig11"]; got != 88000000 {
		t.Errorf("phase:fig11 = %v, want 88000000", got)
	}
	if got := rec.Benchmarks["BenchmarkTableIV"]; got != 100 {
		t.Errorf("existing benchmark clobbered: %v", got)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"phases":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergePhases(&rec, empty); err == nil {
		t.Error("empty phase file should be an error")
	}
}

// TestMergePhaseList: a comma-separated -phases spec folds every file,
// matching the bench.sh pattern of pipeline wall-times plus the daemon
// selftest latencies in one record.
func TestMergePhaseList(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pipeline := write("pipeline.json", `{"phases":{"table3":103318454}}`)
	loadgen := write("loadgen.json", `{"phases":{"serve.loadgen.p99":7300000}}`)

	rec := Record{Benchmarks: map[string]float64{}}
	if err := mergePhaseList(&rec, pipeline+","+loadgen); err != nil {
		t.Fatal(err)
	}
	if rec.Benchmarks["phase:table3"] != 103318454 || rec.Benchmarks["phase:serve.loadgen.p99"] != 7300000 {
		t.Errorf("merged record = %v, want both files' phases", rec.Benchmarks)
	}

	if err := mergePhaseList(&Record{Benchmarks: map[string]float64{}}, ""); err != nil {
		t.Errorf("empty spec should be a no-op, got %v", err)
	}
	if err := mergePhaseList(&rec, pipeline+",missing.json"); err == nil {
		t.Error("missing file in the list should be an error")
	}
}

// TestPhaseTolerance: a 20% slowdown regresses a benchmark (tol 10%) but
// not a phase entry (phase-tol 35%).
func TestPhaseTolerance(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rec Record) string {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", Record{Rev: "a", Benchmarks: map[string]float64{"phase:table3": 100}})
	cur := write("new.json", Record{Rev: "b", Benchmarks: map[string]float64{"phase:table3": 120}})
	if err := compare([]string{old, cur}); err != nil {
		t.Errorf("20%% phase slowdown should pass the 35%% phase tolerance: %v", err)
	}
	oldB := write("oldb.json", Record{Rev: "a", Benchmarks: map[string]float64{"BenchmarkX": 100}})
	curB := write("newb.json", Record{Rev: "b", Benchmarks: map[string]float64{"BenchmarkX": 120}})
	if err := compare([]string{oldB, curB}); err == nil {
		t.Error("20%% benchmark slowdown should fail the 10%% tolerance")
	}
}
