package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkCacheAccessMRUHit-8   	197019026	         6.094 ns/op", "BenchmarkCacheAccessMRUHit", 6.094, true},
		{"BenchmarkTableIV          	       2	2168872337 ns/op	1206849128 B/op	   44042 allocs/op", "BenchmarkTableIV", 2168872337, true},
		{"BenchmarkAblationLinkage/average-16        100     1200 ns/op", "BenchmarkAblationLinkage/average", 1200, true},
		{"ok  	repro/internal/mem	0.006s", "", 0, false},
		{"PASS", "", 0, false},
		{"goos: linux", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}
