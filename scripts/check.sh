#!/usr/bin/env bash
# check.sh — the full verification gate for this repository.
#
#   gofmt        formatting (including analyzer fixtures, which must stay
#                gofmt-clean so their golden line numbers are stable)
#   go vet       the stock toolchain checks
#   charnet-vet  the repo's determinism-and-correctness lint suite
#                (docs/ANALYSIS.md), including the whole-program
#                detertaint reachability proof over every registered
#                driver's Run path, with stale //charnet:ignore
#                directives rejected (-unused-ignores) and the machine-
#                readable findings document (-json) archived in the work
#                dir next to the trace artifacts
#   go test      all packages, race detector on, shuffled execution
#                order (-shuffle=on) so order-dependent tests cannot
#                hide behind file ordering
#   trace smoke  charnet -trace-out on a real driver, validated by
#                cmd/tracecheck, with stdout checked byte-identical to an
#                untraced run (the observability determinism contract)
#   telemetry    charnet -telemetry-addr on a real driver, its /metrics
#   smoke        endpoint scraped mid-run and validated by
#                cmd/metricscheck (Prometheus format, histogram
#                invariants, required latency families), with stdout
#                again checked byte-identical to an untraced run
#   render smoke charnet -full all diffed byte-for-byte against
#                docs/full_output.txt (the artifact text renderer must
#                reproduce the legacy renderings exactly), then the same
#                drivers as -format json validated by cmd/artifactcheck;
#                one shared -cache DIR keeps the second pass fast
#   spec smoke   every examples/*.json workload spec validated by
#                cmd/artifactcheck -spec, then charnet -suite-spec
#                examples/spec2017mem.json table4 run end-to-end: the
#                text rendering must grow the external suite's column
#                and the JSON rendering must still validate
#   daemon smoke charnetd on an ephemeral port: one /v1/measure request
#                validated by cmd/artifactcheck, /metrics scraped by
#                cmd/metricscheck for the serve.* families, then SIGTERM
#                and a clean (exit 0) graceful drain
#
# Tier-1 (go build + go test) is the floor; this script is the gate every
# PR should pass.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== charnet-vet ./... (stale-ignore check, JSON archive)"
if ! go run ./cmd/charnet-vet -unused-ignores -json ./... > "$workdir/vet.json"; then
    echo "charnet-vet findings:" >&2
    cat "$workdir/vet.json" >&2
    exit 1
fi
grep -q '"analyzers"' "$workdir/vet.json" || {
    echo "vet.json missing the analyzer roster" >&2; exit 1; }

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "== bench smoke (compile + one iteration)"
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "== trace smoke (charnet -trace-out + tracecheck + stdout equivalence)"
tracedir="$workdir/trace"
mkdir -p "$tracedir"
go run ./cmd/charnet -trace-out "$tracedir/trace.json" table4 > "$tracedir/traced.txt" 2> "$tracedir/profile.txt"
go run ./cmd/charnet table4 > "$tracedir/plain.txt"
if ! cmp -s "$tracedir/traced.txt" "$tracedir/plain.txt"; then
    echo "tracing changed experiment stdout:" >&2
    diff "$tracedir/plain.txt" "$tracedir/traced.txt" >&2 || true
    exit 1
fi
go run ./cmd/tracecheck "$tracedir/trace.json"
grep -q "self-profile" "$tracedir/profile.txt" || {
    echo "missing self-profile on stderr" >&2; exit 1; }

echo "== telemetry smoke (live /metrics mid-run + metricscheck + stdout equivalence)"
teledir="$workdir/telemetry"
mkdir -p "$teledir"
go build -o "$teledir/charnet" ./cmd/charnet
go build -o "$teledir/metricscheck" ./cmd/metricscheck
"$teledir/charnet" -telemetry-addr 127.0.0.1:0 -telemetry-out "$teledir/telemetry.json" \
    -cache "$teledir/mstore" table4 > "$teledir/traced.txt" 2> "$teledir/stderr.txt" &
telepid=$!
teleaddr=""
for _ in $(seq 1 100); do
    teleaddr=$(sed -n 's|^charnet: telemetry: serving on http://||p' "$teledir/stderr.txt")
    [[ -n "$teleaddr" ]] && break
    sleep 0.05
done
if [[ -z "$teleaddr" ]]; then
    echo "telemetry server never announced its address:" >&2
    cat "$teledir/stderr.txt" >&2
    exit 1
fi
"$teledir/metricscheck" -url "http://$teleaddr/metrics" -retries 200 -interval 25ms \
    -want charnet_measure_latency_seconds,charnet_sim_workload_latency_seconds,charnet_pool_queue_wait_seconds,charnet_sim_phase_run_seconds,charnet_mstore_get_miss_latency_seconds
wait "$telepid"
"$teledir/charnet" -cache "$teledir/mstore" table4 > "$teledir/plain.txt"
if ! cmp -s "$teledir/traced.txt" "$teledir/plain.txt"; then
    echo "telemetry serving changed experiment stdout:" >&2
    diff "$teledir/plain.txt" "$teledir/traced.txt" >&2 || true
    exit 1
fi
grep -q '"name": "telemetry"' "$teledir/telemetry.json" || {
    echo "telemetry run-report artifact missing" >&2; exit 1; }

echo "== render smoke (-full all vs docs/full_output.txt, then -format json | artifactcheck)"
renderdir="$workdir/render"
mkdir -p "$renderdir"
go build -o "$renderdir/charnet" ./cmd/charnet
go build -o "$renderdir/artifactcheck" ./cmd/artifactcheck
"$renderdir/charnet" -full -cache "$renderdir/mstore" all > "$renderdir/full.txt"
if ! cmp -s "$renderdir/full.txt" docs/full_output.txt; then
    echo "charnet -full all diverged from docs/full_output.txt:" >&2
    diff docs/full_output.txt "$renderdir/full.txt" | head -40 >&2 || true
    exit 1
fi
"$renderdir/charnet" -full -cache "$renderdir/mstore" -format json all > "$renderdir/full.json"
"$renderdir/artifactcheck" < "$renderdir/full.json"

echo "== spec smoke (artifactcheck -spec examples/*.json, then -suite-spec through table4)"
specdir="$workdir/spec"
mkdir -p "$specdir"
for f in examples/*.json; do
    "$renderdir/artifactcheck" -spec "$f"
done
"$renderdir/charnet" -suite-spec examples/spec2017mem.json -cache "$specdir/mstore" table4 \
    > "$specdir/table4.txt"
grep -q "SPEC CPU17 mem" "$specdir/table4.txt" || {
    echo "external suite column missing from table4 text rendering" >&2; exit 1; }
"$renderdir/charnet" -suite-spec examples/spec2017mem.json -cache "$specdir/mstore" \
    -format json table4 | "$renderdir/artifactcheck"

echo "== daemon smoke (charnetd serve + measure + /metrics scrape + graceful SIGTERM)"
daemondir="$workdir/daemon"
mkdir -p "$daemondir"
go build -o "$daemondir/charnetd" ./cmd/charnetd
"$daemondir/charnetd" -addr 127.0.0.1:0 2> "$daemondir/stderr.txt" &
daemonpid=$!
daemonaddr=""
for _ in $(seq 1 100); do
    daemonaddr=$(sed -n 's|^charnetd: serving on http://||p' "$daemondir/stderr.txt")
    [[ -n "$daemonaddr" ]] && break
    sleep 0.05
done
if [[ -z "$daemonaddr" ]]; then
    echo "charnetd never announced its address:" >&2
    cat "$daemondir/stderr.txt" >&2
    exit 1
fi
curl -fsS -X POST -H 'Content-Type: application/json' -d '{"suite":"aspnet"}' \
    "http://$daemonaddr/v1/measure" > "$daemondir/measure.json"
"$renderdir/artifactcheck" < "$daemondir/measure.json"
"$teledir/metricscheck" -url "http://$daemonaddr/metrics" -retries 200 -interval 25ms \
    -want charnet_serve_request_latency_seconds,charnet_serve_queue_wait_seconds,charnet_measure_latency_seconds
kill -TERM "$daemonpid"
if ! wait "$daemonpid"; then
    echo "charnetd did not exit cleanly on SIGTERM:" >&2
    cat "$daemondir/stderr.txt" >&2
    exit 1
fi
grep -q "charnetd: drained" "$daemondir/stderr.txt" || {
    echo "charnetd did not report a graceful drain" >&2; exit 1; }

echo "ok: all checks passed"
