#!/usr/bin/env bash
# check.sh — the full verification gate for this repository.
#
#   gofmt        formatting (including analyzer fixtures, which must stay
#                gofmt-clean so their golden line numbers are stable)
#   go vet       the stock toolchain checks
#   charnet-vet  the repo's determinism-and-correctness lint suite
#                (docs/ANALYSIS.md)
#   go test      all packages, race detector on
#
# Tier-1 (go build + go test) is the floor; this script is the gate every
# PR should pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== charnet-vet ./..."
go run ./cmd/charnet-vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (compile + one iteration)"
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "ok: all checks passed"
