#!/usr/bin/env bash
# bench.sh — the benchmark-regression harness.
#
# Runs the full benchmark suite (per-figure pipeline benchmarks plus the
# simulator micro-benchmarks), records a BENCH_<rev>.json snapshot via
# cmd/benchdiff, and compares it against the most recent record committed
# on an ancestor revision. Exits nonzero if any benchmark regressed more
# than the tolerance (default 10%).
#
# Also records top-level pipeline phase wall-times: one `charnet
# -profile-json` run of every figure lands phase:<name> entries in the
# record, so a benchdiff regression localizes to a phase (looser
# PHASE_TOL, since each phase is a single run). A `charnetd -selftest`
# run additionally lands serving latency (phase:serve.loadgen.p50/p99/
# ns_per_req) in the same record, so daemon regressions are caught too.
#
# Environment knobs:
#   BENCH      benchmark regexp        (default ".")
#   BENCHTIME  go test -benchtime      (default "1s")
#   COUNT      go test -count          (default 3; min across runs is kept)
#   BENCH_TOL  allowed slowdown        (default 0.10)
#   PHASE_TOL  allowed phase slowdown  (default 0.35)
#   BENCH_BASE explicit baseline file  (default: newest BENCH_<rev>.json of
#              an ancestor commit)
set -euo pipefail
cd "$(dirname "$0")/.."

rev=$(git rev-parse --short=7 HEAD)
if ! git diff --quiet HEAD 2>/dev/null; then
    rev="${rev}-dirty"
fi
out="BENCH_${rev}.json"

echo "== charnet phase profile (rev ${rev})"
phases=$(mktemp)
loadgen=$(mktemp)
trap 'rm -f "$phases" "$loadgen"' EXIT
go run ./cmd/charnet -profile-json "$phases" all > /dev/null 2> /dev/null

echo "== charnetd serving selftest (rev ${rev})"
go run ./cmd/charnetd -addr 127.0.0.1:0 -selftest -selftest-json "$loadgen" 2> /dev/null

echo "== go test -bench (rev ${rev})"
go test -run=NONE -bench="${BENCH:-.}" -benchtime="${BENCHTIME:-1s}" \
    -count="${COUNT:-3}" ./... |
    go run ./cmd/benchdiff record -rev "$rev" -phases "$phases,$loadgen" -out "$out"
echo "recorded $out"

# Baseline: newest BENCH_<rev>.json whose rev is an ancestor commit (not
# this one). Explicit override via BENCH_BASE.
base="${BENCH_BASE:-}"
if [[ -z "$base" ]]; then
    for r in $(git rev-list --abbrev-commit --abbrev=7 HEAD); do
        if [[ "$r" != "${rev%-dirty}" && -f "BENCH_${r}.json" ]]; then
            base="BENCH_${r}.json"
            break
        fi
    done
fi
if [[ -z "$base" ]]; then
    echo "no baseline record found; $out is the new baseline"
    exit 0
fi

echo "== benchdiff compare"
go run ./cmd/benchdiff compare -tol "${BENCH_TOL:-0.10}" -phase-tol "${PHASE_TOL:-0.35}" "$base" "$out"
