// Package repro_test is the benchmark harness of the reproduction: one
// testing.B benchmark per paper table/figure regenerates that artifact
// from scratch (fresh measurements, no cross-iteration caching), plus
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/mstore"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchCfg is the fidelity used by the per-figure benchmarks: high enough
// to exercise the full pipeline, low enough that every figure regenerates
// in seconds.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Instructions = 10000
	return cfg
}

func benchFigure[T any](b *testing.B, f func(context.Context, *experiments.Lab) (T, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg())
		if _, err := f(context.Background(), lab); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTableIII(b *testing.B) { benchFigure(b, experiments.TableIII) }
func BenchmarkTableIV(b *testing.B)  { benchFigure(b, experiments.TableIV) }

// BenchmarkTableIVWarmCache regenerates Table IV with a warm measurement
// store: every suite measurement is served from disk and only the
// analysis (PCA, clustering, subsetting, validation) reruns. The ratio to
// BenchmarkTableIV is the speedup the `charnet -cache DIR` flag buys on
// repeated invocations.
func BenchmarkTableIVWarmCache(b *testing.B) {
	store, err := mstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	warm := experiments.NewLab(benchCfg())
	warm.Store = store
	if _, err := experiments.TableIV(context.Background(), warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg())
		lab.Store = store
		if _, err := experiments.TableIV(context.Background(), lab); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkFigure1(b *testing.B)  { benchFigure(b, experiments.Figure1) }
func BenchmarkFigure2(b *testing.B)  { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, experiments.Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, experiments.Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, experiments.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, experiments.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }

// Figures 11 and 12 render different artifacts from the same core-count
// sweep; each benchmark uses a fresh lab, so both pay the full sweep.
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, experiments.Figure12) }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, experiments.Figure13) }
func BenchmarkFigure14(b *testing.B) { benchFigure(b, experiments.Figure14) }

// --- Simulator microbenchmarks ---

// BenchmarkSimulatorThroughput measures raw engine speed in instructions
// per second for a representative managed workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := workload.ByName(workload.DotNetCategories(), "System.Runtime")
	m := machine.CoreI9()
	const instr = 50_000
	b.SetBytes(instr) // report "bytes" as instructions for MB/s ~ MIPS
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, m, sim.Options{Instructions: instr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureSuite measures the parallel suite-measurement harness
// over the 44 .NET categories.
func BenchmarkMeasureSuite(b *testing.B) {
	cats := workload.DotNetCategories()
	m := machine.CoreI9()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.MeasureSuite(cats, m, sim.Options{Instructions: 5000})
	}
}

// --- Ablations (DESIGN.md §5) ---

// measureOnce returns cached category measurements for the ablations that
// only vary the analysis (not the measurement).
var ablationMeasurements []core.Measurement

func ablationMs(b *testing.B) []core.Measurement {
	if ablationMeasurements == nil {
		ablationMeasurements = core.MeasureSuite(
			workload.DotNetCategories(), machine.CoreI9(), sim.Options{Instructions: 8000})
	}
	return ablationMeasurements
}

// BenchmarkAblationLinkage compares hierarchical-clustering linkage
// choices on subset quality.
func BenchmarkAblationLinkage(b *testing.B) {
	ms := ablationMs(b)
	for _, lk := range []cluster.Linkage{cluster.Average, cluster.Complete, cluster.Ward, cluster.Single} {
		b.Run(lk.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch, err := core.Characterize(ms, 4, lk)
				if err != nil {
					b.Fatal(err)
				}
				_ = ch.Subset(8)
			}
		})
	}
}

// BenchmarkAblationTopPCs varies the number of retained principal
// components (the paper keeps 4).
func BenchmarkAblationTopPCs(b *testing.B) {
	ms := ablationMs(b)
	for _, k := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "pc2", 4: "pc4", 8: "pc8"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch, err := core.Characterize(ms, k, cluster.Average)
				if err != nil {
					b.Fatal(err)
				}
				_ = ch.Subset(8)
			}
		})
	}
}

// BenchmarkAblationReplacement compares LRU vs random cache replacement.
func BenchmarkAblationReplacement(b *testing.B) {
	p, _ := workload.ByName(workload.SpecWorkloads(), "omnetpp")
	m := machine.CoreI9()
	for name, pol := range map[string]mem.ReplacementPolicy{"lru": mem.LRU, "random": mem.Random} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(p, m, sim.Options{Instructions: 30000, Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Counters.MPKI(res.Counters.L1DMisses)
			}
		})
	}
}

// BenchmarkAblationGCCompaction isolates the locality benefit of heap
// compaction behind the paper's GC findings.
func BenchmarkAblationGCCompaction(b *testing.B) {
	p, _ := workload.ByName(workload.DotNetCategories(), "System.Collections")
	m := machine.CoreI9()
	for name, disable := range map[string]bool{"compaction-on": false, "compaction-off": true} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(p, m, sim.Options{
					Instructions: 30000, MaxHeapBytes: 200 << 20,
					AllocScale: 4000, DisableCompaction: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Counters.MPKI(res.Counters.L3Misses)
			}
		})
	}
}

// BenchmarkAblationJITRelocation isolates the cold-start cost of JIT code
// motion (§VII-A1).
func BenchmarkAblationJITRelocation(b *testing.B) {
	p, _ := workload.ByName(workload.AspNetWorkloads(), "Json")
	m := machine.CoreI9()
	for name, disable := range map[string]bool{"relocation-on": false, "relocation-off": true} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(p, m, sim.Options{
					Instructions: 20000, Cores: 2, TierUpCalls: 2,
					PrecompiledFrac: -1, DisableWarmup: true, DisableRelocation: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Counters.PageFaults
			}
		})
	}
}
